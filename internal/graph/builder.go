package graph

import (
	"fmt"
	"sort"

	"repro/internal/group"
)

// FromCSR builds a graph directly from a flat CSR adjacency, bypassing the
// per-node colour maps entirely: offsets has n+1 entries and
// halves[offsets[v]:offsets[v+1]] lists node v's incident halves in any
// order. FromCSR takes ownership of both slices, sorts each node's range by
// colour in place, and validates the proper-colouring and symmetry
// invariants in O(m log Δ). It does not check simplicity (no parallel
// edges) — CSRBuilder enforces that at insertion time, and Validate checks
// it on demand.
//
// The resulting graph is CSR-authoritative: the per-node colour→peer maps
// that AddEdge needs are materialised lazily on first mutation, so purely
// read-driven workloads (the execution engines) never pay for them.
func FromCSR(k int, offsets []int, halves []Half) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("graph: FromCSR needs at least one offset")
	}
	n := len(offsets) - 1
	if offsets[0] != 0 || offsets[n] != len(halves) {
		return nil, fmt.Errorf("graph: FromCSR offsets [%d…%d] do not span %d halves",
			offsets[0], offsets[n], len(halves))
	}
	for v := 0; v < n; v++ {
		if offsets[v+1] < offsets[v] {
			return nil, fmt.Errorf("graph: FromCSR offsets not monotone at node %d", v)
		}
	}
	colors := make([]group.Color, len(halves))
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		sortHalvesByColor(halves[lo:hi])
		var prev group.Color
		for i := lo; i < hi; i++ {
			h := halves[i]
			if !h.Color.Valid(k) {
				return nil, fmt.Errorf("graph: node %d has colour %v outside 1…%d", v, h.Color, k)
			}
			if i > lo && h.Color == prev {
				return nil, fmt.Errorf("graph: colour %v used twice at node %d", h.Color, v)
			}
			if h.Peer == v {
				return nil, fmt.Errorf("graph: self-loop at %d", v)
			}
			if h.Peer < 0 || h.Peer >= n {
				return nil, fmt.Errorf("graph: node %d has peer %d out of range [0, %d)", v, h.Peer, n)
			}
			prev = h.Color
			colors[i] = h.Color
		}
	}
	mates := make([]int, len(halves))
	for v := 0; v < n; v++ {
		for i := offsets[v]; i < offsets[v+1]; i++ {
			h := halves[i]
			pc := colors[offsets[h.Peer]:offsets[h.Peer+1]]
			j := sort.Search(len(pc), func(x int) bool { return pc[x] >= h.Color })
			if j == len(pc) || pc[j] != h.Color || halves[offsets[h.Peer]+j].Peer != v {
				return nil, fmt.Errorf("graph: edge {%d, %d} colour %v not symmetric", v, h.Peer, h.Color)
			}
			mates[i] = offsets[h.Peer] + j
		}
	}
	return &Graph{
		n: n, k: k,
		flat: flatAdj{valid: true, offsets: offsets, halves: halves, colors: colors, mates: mates},
	}, nil
}

// sortHalvesByColor sorts a node's halves by colour. Ranges are bounded by
// the degree, and a proper colouring makes the keys distinct, so a plain
// insertion sort beats sort.Slice (which allocates a closure and a reflect
// swapper per call — one per node adds up on million-node builds); large
// ranges fall back to the standard library.
func sortHalvesByColor(hs []Half) {
	if len(hs) > 64 {
		sort.Slice(hs, func(a, b int) bool { return hs[a].Color < hs[b].Color })
		return
	}
	for i := 1; i < len(hs); i++ {
		h := hs[i]
		j := i - 1
		for j >= 0 && hs[j].Color > h.Color {
			hs[j+1] = hs[j]
			j--
		}
		hs[j+1] = h
	}
}

// builderEdge is one accepted edge inside a CSRBuilder.
type builderEdge struct {
	u, v int32
	c    group.Color
}

// colorBitsLimit caps the colour-occupation bitset at 16 MB; bigger
// (n, k) shapes fall back to a shared hash set. Every benchmark-scale
// family fits the bitset comfortably.
const colorBitsLimit = 1 << 27

// CSRBuilder assembles a properly edge-coloured graph directly in CSR form.
// Edges are accumulated into a flat edge list, and Build performs the
// classic two-pass degree-count/fill into the final halves slab — no
// per-node maps, no Flatten. The incremental constraint checks run on flat
// structures too: degrees in an array, colour occupation in a bitset (a
// hash set beyond 16 MB of bits), and adjacency in an intrusive linked
// list threaded through the accepted halves, walked from the lower-degree
// endpoint — degrees are bounded by Δ or k in every family, so HasEdge is
// effectively O(1) with array locality. Constructing an n-node instance
// costs O(1) allocations amortised where the map-based New/AddEdge path
// costs Ω(n), and runs faster in wall-clock as well (BenchmarkGen*).
//
// The builder is the engine behind the package's random-instance
// constructors and the scenario families in internal/gen. A builder is not
// safe for concurrent use; Reset recycles all internal storage for the
// next build.
type CSRBuilder struct {
	n, k  int
	degs  []int32
	edges []builderEdge
	// head[v] is the index in peers/next of v's most recently added half
	// (-1 when none): an intrusive adjacency list with two entries per
	// edge, giving HasEdge a short flat walk instead of a hash lookup.
	head  []int32
	peers []int32
	next  []int32
	// colorBits[(v*(k+1)+c)/64] bit (v*(k+1)+c)%64 marks colour c in use
	// at node v; colorUsed is the fallback for shapes where the bitset
	// would exceed colorBitsLimit.
	colorBits []uint64
	colorUsed map[uint64]struct{}
}

// NewCSRBuilder returns an empty builder for an n-node graph with colour
// palette 1…k.
func NewCSRBuilder(n, k int) *CSRBuilder {
	b := &CSRBuilder{}
	b.Reset(n, k)
	return b
}

// Reset re-targets the builder at an empty n-node, k-colour graph, keeping
// the internal storage of previous builds.
func (b *CSRBuilder) Reset(n, k int) {
	b.n, b.k = n, k
	if cap(b.degs) < n {
		b.degs = make([]int32, n)
		b.head = make([]int32, n)
	} else {
		b.degs = b.degs[:n]
		clear(b.degs)
		b.head = b.head[:n]
	}
	for i := range b.head {
		b.head[i] = -1
	}
	b.edges = b.edges[:0]
	b.peers = b.peers[:0]
	b.next = b.next[:0]
	if bits := n * (k + 1); bits <= colorBitsLimit {
		words := (bits + 63) / 64
		if cap(b.colorBits) < words {
			b.colorBits = make([]uint64, words)
		} else {
			b.colorBits = b.colorBits[:words]
			clear(b.colorBits)
		}
		b.colorUsed = nil
	} else {
		b.colorBits = nil
		if b.colorUsed == nil {
			b.colorUsed = make(map[uint64]struct{})
		} else {
			clear(b.colorUsed)
		}
	}
}

// Grow pre-reserves capacity for m edges, saving the doubling reallocations
// when the caller can estimate the final edge count.
func (b *CSRBuilder) Grow(m int) {
	if cap(b.edges)-len(b.edges) < m {
		edges := make([]builderEdge, len(b.edges), len(b.edges)+m)
		copy(edges, b.edges)
		b.edges = edges
	}
	if cap(b.peers)-len(b.peers) < 2*m {
		peers := make([]int32, len(b.peers), len(b.peers)+2*m)
		copy(peers, b.peers)
		b.peers = peers
		next := make([]int32, len(b.next), len(b.next)+2*m)
		copy(next, b.next)
		b.next = next
	}
}

// N returns the node count the builder was configured with.
func (b *CSRBuilder) N() int { return b.n }

// K returns the palette size.
func (b *CSRBuilder) K() int { return b.k }

// NumEdges returns the number of edges accepted so far.
func (b *CSRBuilder) NumEdges() int { return len(b.edges) }

// Degree returns the current degree of node v.
func (b *CSRBuilder) Degree(v int) int { return int(b.degs[v]) }

// HasEdge reports whether the pair {u, v} is already joined (in any
// colour). It walks the adjacency list of the lower-degree endpoint.
func (b *CSRBuilder) HasEdge(u, v int) bool {
	if b.degs[v] < b.degs[u] {
		u, v = v, u
	}
	for i := b.head[u]; i >= 0; i = b.next[i] {
		if b.peers[i] == int32(v) {
			return true
		}
	}
	return false
}

// ColorFree reports whether colour c is still unused at node v.
func (b *CSRBuilder) ColorFree(v int, c group.Color) bool {
	if b.colorBits != nil {
		bit := uint(v*(b.k+1) + int(c))
		return b.colorBits[bit/64]&(1<<(bit%64)) == 0
	}
	_, ok := b.colorUsed[uint64(v)<<32|uint64(uint32(c))]
	return !ok
}

// markColor records colour c as used at node v.
func (b *CSRBuilder) markColor(v int, c group.Color) {
	if b.colorBits != nil {
		bit := uint(v*(b.k+1) + int(c))
		b.colorBits[bit/64] |= 1 << (bit % 64)
		return
	}
	b.colorUsed[uint64(v)<<32|uint64(uint32(c))] = struct{}{}
}

// link records the accepted edge in the constraint structures.
func (b *CSRBuilder) link(u, v int, c group.Color) {
	i := int32(len(b.peers))
	b.peers = append(b.peers, int32(v), int32(u))
	b.next = append(b.next, b.head[u], b.head[v])
	b.head[u] = i
	b.head[v] = i + 1
	b.markColor(u, c)
	b.markColor(v, c)
	b.degs[u]++
	b.degs[v]++
	b.edges = append(b.edges, builderEdge{u: int32(u), v: int32(v), c: c})
}

// AddEdge inserts the edge {u, v} with colour c, enforcing the same
// invariants as Graph.AddEdge: simplicity and the proper-colouring
// constraint.
func (b *CSRBuilder) AddEdge(u, v int, c group.Color) error {
	if u == v {
		return fmt.Errorf("graph: self-loop at %d", u)
	}
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d, %d} out of range [0, %d)", u, v, b.n)
	}
	if !c.Valid(b.k) {
		return fmt.Errorf("graph: colour %v outside 1…%d", c, b.k)
	}
	if !b.ColorFree(u, c) {
		return fmt.Errorf("graph: colour %v already used at node %d", c, u)
	}
	if !b.ColorFree(v, c) {
		return fmt.Errorf("graph: colour %v already used at node %d", c, v)
	}
	if b.HasEdge(u, v) {
		return fmt.Errorf("graph: edge {%d, %d} already present", u, v)
	}
	b.link(u, v, c)
	return nil
}

// TryAddEdge is AddEdge with skip-on-conflict semantics: it reports whether
// the edge was accepted, mirroring the random generators' historical
// `_ = g.AddEdge(…)` usage without the error allocation.
func (b *CSRBuilder) TryAddEdge(u, v int, c group.Color) bool {
	if u == v || u < 0 || u >= b.n || v < 0 || v >= b.n || !c.Valid(b.k) ||
		!b.ColorFree(u, c) || !b.ColorFree(v, c) || b.HasEdge(u, v) {
		return false
	}
	b.link(u, v, c)
	return true
}

// Build assembles the accumulated edges into a graph: degree counts become
// offsets by prefix sum, a single fill pass scatters both halves of every
// edge, and FromCSR sorts, validates and wraps the slab. The builder
// remains usable afterwards (Reset to start a new graph); the returned
// graph owns the freshly built arrays.
func (b *CSRBuilder) Build() (*Graph, error) {
	offsets := make([]int, b.n+1)
	for v := 0; v < b.n; v++ {
		offsets[v+1] = offsets[v] + int(b.degs[v])
	}
	halves := make([]Half, offsets[b.n])
	// cursor[v] is the next free slot in v's range; reusing the degree
	// array would destroy the builder's reusability, so keep a local copy.
	cursor := make([]int, b.n)
	copy(cursor, offsets[:b.n])
	for _, e := range b.edges {
		halves[cursor[e.u]] = Half{Peer: int(e.v), Color: e.c}
		cursor[e.u]++
		halves[cursor[e.v]] = Half{Peer: int(e.u), Color: e.c}
		cursor[e.v]++
	}
	return FromCSR(b.k, offsets, halves)
}
