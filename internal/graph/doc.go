// Package graph implements finite, properly edge-coloured graphs: the
// concrete problem instances of Hirvonen & Suomela (PODC 2012, §1.2).
//
// A proper k-edge-colouring assigns each edge a colour 1…k such that no two
// edges sharing an endpoint have the same colour. Such graphs are both the
// inputs and the communication topology of the distributed algorithms in
// this repository: nodes are anonymous, and a node refers to its incident
// edges by their colours.
//
// # Representations and invariants
//
// A Graph keeps up to two representations of its adjacency, and the
// package invariant is that AT LEAST ONE is always current
// (adj != nil || flat.valid):
//
//   - the per-node colour→peer maps (adj), which back mutation via AddEdge
//     and the convenience lookups;
//   - the flat CSR adjacency (one contiguous []Half plus node offsets,
//     sorted by colour within a node, with a mates index pairing the two
//     directed halves of each undirected edge), which backs the
//     zero-allocation read API the execution engines run on: Incident,
//     IncidentColors, HalfRange, Halves, Mates.
//
// Which one exists depends on provenance, and each is materialised from
// the other lazily:
//
//   - Map-built graphs (New + AddEdge) have maps only; the first Flatten
//     builds the CSR arrays. Engines call Flatten up front — the flat
//     read API requires it, and building lazily under the engines'
//     concurrent readers would race.
//   - CSR-built graphs (FromCSR, and therefore every gen.CSRBuilder
//     instance) have NO maps at all: the generator fast path never pays
//     for per-node map allocation. The first mutation — or a map-backed
//     lookup — materialises the maps from the CSR arrays on demand.
//
// Mutation invalidates derived state: AddEdge updates the maps (after
// materialising them if needed), marks the flat adjacency stale so the
// next Flatten rebuilds it, and clears the cached Edges() slice. The edge
// cache is an atomic pointer because Edges() stays safe for the concurrent
// readers the Flatten contract allows — two racing fills build identical
// slices and either may win. The steady state of every hot path is
// therefore: build once (CSRBuilder), Flatten never copies again, and all
// engine reads are index arithmetic on shared immutable slices.
//
// # Generators and validators
//
// The package provides generators for the paper's instances — the Figure 1
// example, the §1.2 worst-case paths (NewWorstCase), unions of random
// matchings, bounded-degree and k-regular families, windows of
// Cayley-graph trees (FromSystem) — and the Legacy* map-path twins that
// pin the CSR ports byte-identical in tests. Richer parameterised families
// live in internal/gen on top of CSRBuilder.
//
// Validate checks the proper-colouring invariants; CheckMatching checks a
// run's outputs against the matching conditions (M1–M3); SequentialGreedy
// is the centralized greedy oracle the distributed machines are pinned
// against. The View function bridges to the view world: the radius-h
// universal-cover view of a node in a properly coloured graph is exactly a
// finite colour system, because non-backtracking walks are reduced colour
// words.
package graph
