package logstar

import "testing"

func TestLogStar(t *testing.T) {
	tests := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{16, 3}, {17, 4}, {65536, 4}, {65537, 5}, {1 << 62, 5},
	}
	for _, tt := range tests {
		if got := LogStar(tt.n); got != tt.want {
			t.Errorf("LogStar(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestLog2Ceil(t *testing.T) {
	tests := []struct{ n, want int }{
		{1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4}, {1024, 10}, {1025, 11},
	}
	for _, tt := range tests {
		if got := Log2Ceil(tt.n); got != tt.want {
			t.Errorf("Log2Ceil(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestTower(t *testing.T) {
	tests := []struct{ h, want int }{
		{0, 1}, {1, 2}, {2, 4}, {3, 16}, {4, 65536},
	}
	for _, tt := range tests {
		if got := Tower(tt.h); got != tt.want {
			t.Errorf("Tower(%d) = %d, want %d", tt.h, got, tt.want)
		}
	}
	if Tower(6) != int(^uint(0)>>1) {
		t.Error("Tower(6) should saturate")
	}
	// log*(Tower(h)) = h for the exactly representable towers.
	for h := 0; h <= 4; h++ {
		if got := LogStar(Tower(h)); got != h {
			t.Errorf("LogStar(Tower(%d)) = %d", h, got)
		}
	}
}

func TestPrimes(t *testing.T) {
	primes := []int{2, 3, 5, 7, 11, 13, 17, 19, 23}
	idx := 0
	for n := 0; n <= 23; n++ {
		want := n == primes[idx]
		if got := IsPrime(n); got != want {
			t.Errorf("IsPrime(%d) = %v", n, got)
		}
		if want {
			idx++
			if idx >= len(primes) {
				break
			}
		}
	}
	tests := []struct{ n, want int }{
		{0, 2}, {2, 2}, {3, 3}, {4, 5}, {8, 11}, {14, 17}, {100, 101},
	}
	for _, tt := range tests {
		if got := NextPrime(tt.n); got != tt.want {
			t.Errorf("NextPrime(%d) = %d, want %d", tt.n, got, tt.want)
		}
	}
}

func TestRootCeil(t *testing.T) {
	tests := []struct{ n, r, want int }{
		{1, 1, 1}, {2, 1, 2}, {9, 2, 3}, {10, 2, 4}, {16, 2, 4},
		{27, 3, 3}, {28, 3, 4}, {1000, 3, 10}, {1001, 3, 11},
		{1 << 40, 4, 1 << 10},
	}
	for _, tt := range tests {
		if got := RootCeil(tt.n, tt.r); got != tt.want {
			t.Errorf("RootCeil(%d, %d) = %d, want %d", tt.n, tt.r, got, tt.want)
		}
	}
	// Defining property: RootCeil(n, r)^r ≥ n > (RootCeil(n, r)−1)^r.
	for n := 1; n < 500; n++ {
		for r := 1; r <= 4; r++ {
			b := RootCeil(n, r)
			if !powAtLeast(b, r, n) {
				t.Errorf("RootCeil(%d, %d) = %d too small", n, r, b)
			}
			if b > 1 && powAtLeast(b-1, r, n) {
				t.Errorf("RootCeil(%d, %d) = %d not minimal", n, r, b)
			}
		}
	}
}
