// Package logstar provides the iterated-logarithm arithmetic behind the
// O(Δ + log* k) upper bound discussion of Hirvonen & Suomela (PODC 2012,
// §1.3): log*, power towers, integer roots and small primes for Linial's
// polynomial colour-reduction families.
package logstar

// LogStar returns log*₂(n): the number of times log₂ must be iterated,
// starting from n, before the result is at most 1. LogStar(n) = 0 for
// n ≤ 1. The integer iteration uses ⌈log₂ n⌉, which matches the real-valued
// definition: LogStar(Tower(h)) = h and LogStar(Tower(h)+1) = h+1.
func LogStar(n int) int {
	count := 0
	for n > 1 {
		n = Log2Ceil(n)
		count++
	}
	return count
}

// log2Floor returns ⌊log₂ n⌋ for n ≥ 1.
func log2Floor(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Log2Ceil returns ⌈log₂ n⌉ for n ≥ 1.
func Log2Ceil(n int) int {
	if n <= 1 {
		return 0
	}
	l := log2Floor(n)
	if 1<<l == n {
		return l
	}
	return l + 1
}

// Tower returns the power tower 2↑↑h = 2^(2^(…)) of height h, saturating
// at the largest int to avoid overflow. Tower(0) = 1.
func Tower(h int) int {
	const maxExp = 62
	v := 1
	for i := 0; i < h; i++ {
		if v > maxExp {
			return int(^uint(0) >> 1)
		}
		v = 1 << v
	}
	return v
}

// IsPrime reports whether n is prime (trial division; intended for the
// small moduli of colour-reduction schedules).
func IsPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}

// NextPrime returns the smallest prime ≥ n.
func NextPrime(n int) int {
	if n < 2 {
		return 2
	}
	for !IsPrime(n) {
		n++
	}
	return n
}

// RootCeil returns the smallest integer b ≥ 1 with b^r ≥ n, for n ≥ 1 and
// r ≥ 1 — the ⌈n^(1/r)⌉ used to size polynomial families.
func RootCeil(n, r int) int {
	if n <= 1 {
		return 1
	}
	lo, hi := 1, n
	for lo < hi {
		mid := lo + (hi-lo)/2
		if powAtLeast(mid, r, n) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// powAtLeast reports whether b^r ≥ n without overflowing (b, r, n ≥ 1).
func powAtLeast(b, r, n int) bool {
	acc := 1
	for i := 0; i < r; i++ {
		if acc > n/b {
			// acc·b certainly exceeds n; also guards against overflow.
			return true
		}
		acc *= b
	}
	return acc >= n
}
