// Package group implements the free Coxeter group
//
//	G_k = ⟨1, 2, …, k | 1², 2², …, k²⟩,
//
// the free product of k cyclic groups of order two (Hirvonen & Suomela,
// PODC 2012, §2.1). Elements are represented by their unique reduced words:
// sequences of generators ("colours") in which no two consecutive letters
// are equal. The empty word is the identity e.
//
// The Cayley graph Γ_k of G_k with respect to the generators is a k-regular
// k-edge-coloured tree; the norm |x| of an element is its distance from e
// in Γ_k, and d(x, y) = |x̄y| is the tree metric. All the notation of the
// paper — tail, head, pred, translation — is provided here.
package group

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// Color is a generator of G_k, equivalently an edge colour of the Cayley
// graph Γ_k. Valid colours are 1, 2, …, k; the zero value None denotes the
// absence of a colour.
type Color int

// None is the zero Color. It is not a generator; it is used as an "empty"
// sentinel, e.g. as the tail of the identity word.
const None Color = 0

// MaxColor is the largest supported generator. Words are keyed by packing
// one colour per byte, so colours must fit in a byte.
const MaxColor Color = 255

// Valid reports whether c is a generator of G_k, i.e. 1 ≤ c ≤ k.
func (c Color) Valid(k int) bool {
	return c >= 1 && int(c) <= k
}

// String returns the decimal representation of the colour, or "∅" for None.
func (c Color) String() string {
	if c == None {
		return "∅"
	}
	return strconv.Itoa(int(c))
}

// Word is an element of G_k in reduced form: a sequence of colours with no
// two consecutive letters equal. The zero value (nil) is the identity e.
//
// Words are treated as immutable values: all operations return fresh slices
// and never alias their inputs' backing arrays beyond read access.
type Word []Color

// Identity returns the identity element e (the empty word).
func Identity() Word { return nil }

// IsIdentity reports whether w = e.
func (w Word) IsIdentity() bool { return len(w) == 0 }

// Norm returns |w|, the length of the reduced word, which equals the
// distance from e to w in the Cayley graph Γ_k.
func (w Word) Norm() int { return len(w) }

// Tail returns tail(w): the unique colour c with |wc| = |w| − 1, i.e. the
// last letter of the reduced word. Tail of the identity is None.
func (w Word) Tail() Color {
	if len(w) == 0 {
		return None
	}
	return w[len(w)-1]
}

// Head returns head(w) = tail(w̄): the first letter of the reduced word.
// Head of the identity is None.
func (w Word) Head() Color {
	if len(w) == 0 {
		return None
	}
	return w[0]
}

// Pred returns pred(w) = w·tail(w), the reduced word with the last letter
// removed — the neighbour of w on the unique path towards e in Γ_k.
// Pred of the identity is the identity.
func (w Word) Pred() Word {
	if len(w) == 0 {
		return nil
	}
	return w[: len(w)-1 : len(w)-1].Clone()
}

// At returns the i-th letter (0-based) of the reduced word.
func (w Word) At(i int) Color { return w[i] }

// Clone returns a copy of w with its own backing array.
func (w Word) Clone() Word {
	if len(w) == 0 {
		return nil
	}
	c := make(Word, len(w))
	copy(c, w)
	return c
}

// Inverse returns w̄ = w⁻¹. Since every generator is an involution, the
// inverse of a reduced word is its reversal, which is again reduced.
func (w Word) Inverse() Word {
	if len(w) == 0 {
		return nil
	}
	inv := make(Word, len(w))
	for i, c := range w {
		inv[len(w)-1-i] = c
	}
	return inv
}

// Append returns the product w·c in reduced form: if c equals tail(w) the
// last letter cancels (c² = e), otherwise c is appended. The receiver is
// not modified.
func (w Word) Append(c Color) Word {
	if len(w) > 0 && w[len(w)-1] == c {
		return w.Pred()
	}
	out := make(Word, len(w)+1)
	copy(out, w)
	out[len(w)] = c
	return out
}

// Mul returns the product x·y in reduced form. Cancellation happens only at
// the boundary: the longest suffix of x that is the reversal of a prefix of
// y cancels, and the remainders concatenate.
func Mul(x, y Word) Word {
	i := len(x)
	j := 0
	for i > 0 && j < len(y) && x[i-1] == y[j] {
		i--
		j++
	}
	if i+len(y)-j == 0 {
		return nil
	}
	out := make(Word, 0, i+len(y)-j)
	out = append(out, x[:i]...)
	out = append(out, y[j:]...)
	return out
}

// Translate returns ū·w, the image of w under the isomorphism x ↦ ūx used
// throughout the paper (Lemma 3).
func Translate(u, w Word) Word {
	return Mul(u.Inverse(), w)
}

// Distance returns d(x, y) = |x̄y|, the length of the unique path between
// x and y in the tree Γ_k.
func Distance(x, y Word) int {
	// |x̄y|: the common prefix of x and y cancels.
	i := 0
	for i < len(x) && i < len(y) && x[i] == y[i] {
		i++
	}
	return (len(x) - i) + (len(y) - i)
}

// Equal reports whether two reduced words denote the same group element.
func (w Word) Equal(v Word) bool {
	if len(w) != len(v) {
		return false
	}
	for i := range w {
		if w[i] != v[i] {
			return false
		}
	}
	return true
}

// IsReduced reports whether no two consecutive letters of w are equal and
// all letters lie in 1…k.
func (w Word) IsReduced(k int) bool {
	for i, c := range w {
		if !c.Valid(k) {
			return false
		}
		if i > 0 && w[i-1] == c {
			return false
		}
	}
	return true
}

// Reduce performs free reduction of an arbitrary letter sequence, repeatedly
// cancelling adjacent equal letters, and returns the reduced word.
func Reduce(letters []Color) Word {
	out := make(Word, 0, len(letters))
	for _, c := range letters {
		if n := len(out); n > 0 && out[n-1] == c {
			out = out[:n-1]
		} else {
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// Key returns a compact string key for use in maps: one byte per letter.
// It requires every colour to be ≤ MaxColor, which Word operations preserve
// for any valid input.
func (w Word) Key() string {
	if len(w) == 0 {
		return ""
	}
	b := make([]byte, len(w))
	for i, c := range w {
		b[i] = byte(c)
	}
	return string(b)
}

// FromKey reconstructs the word encoded by Key.
func FromKey(key string) Word {
	if key == "" {
		return nil
	}
	w := make(Word, len(key))
	for i := 0; i < len(key); i++ {
		w[i] = Color(key[i])
	}
	return w
}

// String renders the word in the paper's notation: "e" for the identity,
// otherwise letters joined by "·", e.g. "3·2·1".
func (w Word) String() string {
	if len(w) == 0 {
		return "e"
	}
	var sb strings.Builder
	for i, c := range w {
		if i > 0 {
			sb.WriteByte(0xC2) // "·" is U+00B7, UTF-8 C2 B7
			sb.WriteByte(0xB7)
		}
		sb.WriteString(strconv.Itoa(int(c)))
	}
	return sb.String()
}

// ErrNotReduced is returned by Parse for syntactically valid but non-reduced
// words.
var ErrNotReduced = errors.New("group: word is not reduced")

// Parse parses the notation produced by String: "e" (or the empty string)
// for the identity, otherwise positive decimal letters joined by "·" or ".".
// The parsed word must be reduced.
func Parse(s string) (Word, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "e" {
		return nil, nil
	}
	parts := strings.FieldsFunc(s, func(r rune) bool { return r == '·' || r == '.' })
	w := make(Word, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("group: parse %q: %w", s, err)
		}
		if n < 1 || Color(n) > MaxColor {
			return nil, fmt.Errorf("group: parse %q: colour %d out of range [1, %d]", s, n, MaxColor)
		}
		w = append(w, Color(n))
	}
	for i := 1; i < len(w); i++ {
		if w[i] == w[i-1] {
			return nil, fmt.Errorf("group: parse %q: %w", s, ErrNotReduced)
		}
	}
	return w, nil
}

// Less orders words by shortlex: first by norm, then lexicographically.
// It provides the deterministic enumeration order used by the adversary.
func Less(x, y Word) bool {
	if len(x) != len(y) {
		return len(x) < len(y)
	}
	for i := range x {
		if x[i] != y[i] {
			return x[i] < y[i]
		}
	}
	return false
}

// Ball returns all reduced words over colours 1…k of norm at most radius,
// in shortlex order. The ball of radius r in Γ_k has 1 + k·Σ_{i<r}(k−1)^i
// elements; callers should keep k and radius small enough for that to be
// tractable.
func Ball(k, radius int) []Word {
	if radius < 0 {
		return nil
	}
	words := []Word{nil}
	frontier := []Word{nil}
	for r := 1; r <= radius; r++ {
		var next []Word
		for _, w := range frontier {
			for c := Color(1); int(c) <= k; c++ {
				if c == w.Tail() {
					continue
				}
				next = append(next, w.Append(c))
			}
		}
		words = append(words, next...)
		frontier = next
	}
	return words
}

// Sphere returns all reduced words of norm exactly radius, in lexicographic
// order.
func Sphere(k, radius int) []Word {
	if radius < 0 {
		return nil
	}
	frontier := []Word{nil}
	for r := 1; r <= radius; r++ {
		var next []Word
		for _, w := range frontier {
			for c := Color(1); int(c) <= k; c++ {
				if c == w.Tail() {
					continue
				}
				next = append(next, w.Append(c))
			}
		}
		frontier = next
	}
	return frontier
}

// BallSize returns the number of reduced words of norm ≤ radius over k
// colours: 1 + k·Σ_{i=0}^{radius−1}(k−1)^i.
func BallSize(k, radius int) int {
	if radius < 0 {
		return 0
	}
	size := 1
	layer := 1
	for r := 1; r <= radius; r++ {
		if r == 1 {
			layer = k
		} else {
			layer *= k - 1
		}
		size += layer
	}
	return size
}
