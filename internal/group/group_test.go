package group

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func mustParse(t *testing.T, s string) Word {
	t.Helper()
	w, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(%q): %v", s, err)
	}
	return w
}

func TestIdentity(t *testing.T) {
	e := Identity()
	if !e.IsIdentity() {
		t.Error("Identity().IsIdentity() = false")
	}
	if e.Norm() != 0 {
		t.Errorf("Identity().Norm() = %d, want 0", e.Norm())
	}
	if e.Tail() != None {
		t.Errorf("Identity().Tail() = %v, want None", e.Tail())
	}
	if e.Head() != None {
		t.Errorf("Identity().Head() = %v, want None", e.Head())
	}
	if !e.Pred().IsIdentity() {
		t.Error("Identity().Pred() is not identity")
	}
	if got := e.String(); got != "e" {
		t.Errorf("Identity().String() = %q, want \"e\"", got)
	}
}

func TestTailHeadPred(t *testing.T) {
	tests := []struct {
		word string
		tail Color
		head Color
		pred string
	}{
		{"e", None, None, "e"},
		{"1", 1, 1, "e"},
		{"3·2·1", 1, 3, "3·2"},
		{"2·1", 1, 2, "2"},
		{"1·2·1·2", 2, 1, "1·2·1"},
	}
	for _, tt := range tests {
		t.Run(tt.word, func(t *testing.T) {
			w := mustParse(t, tt.word)
			if got := w.Tail(); got != tt.tail {
				t.Errorf("Tail() = %v, want %v", got, tt.tail)
			}
			if got := w.Head(); got != tt.head {
				t.Errorf("Head() = %v, want %v", got, tt.head)
			}
			if got := w.Pred(); got.String() != tt.pred {
				t.Errorf("Pred() = %v, want %v", got, tt.pred)
			}
		})
	}
}

func TestAppend(t *testing.T) {
	tests := []struct {
		word string
		c    Color
		want string
	}{
		{"e", 1, "1"},
		{"1", 1, "e"},
		{"1", 2, "1·2"},
		{"3·2·1", 1, "3·2"},
		{"3·2·1", 2, "3·2·1·2"},
	}
	for _, tt := range tests {
		t.Run(tt.word+"+"+tt.c.String(), func(t *testing.T) {
			w := mustParse(t, tt.word)
			if got := w.Append(tt.c); got.String() != tt.want {
				t.Errorf("Append(%v) = %v, want %v", tt.c, got, tt.want)
			}
		})
	}
}

func TestAppendDoesNotAliasReceiver(t *testing.T) {
	w := Word{1, 2}
	a := w.Append(3)
	b := w.Append(4)
	if !a.Equal(Word{1, 2, 3}) || !b.Equal(Word{1, 2, 4}) {
		t.Errorf("aliasing detected: a = %v, b = %v", a, b)
	}
	if !w.Equal(Word{1, 2}) {
		t.Errorf("receiver modified: %v", w)
	}
}

func TestMul(t *testing.T) {
	tests := []struct {
		x, y, want string
	}{
		{"e", "e", "e"},
		{"1", "e", "1"},
		{"e", "1", "1"},
		{"1", "1", "e"},
		{"1·2", "2·1", "e"},
		{"1·2", "2·3", "1·3"},
		{"3·2·1", "1·2·3", "e"},
		{"3·2·1", "1·2", "3"},
		{"1·2·3", "3·2·1", "e"},
		{"1·2", "1·2", "1·2·1·2"},
		{"2·1", "3", "2·1·3"},
	}
	for _, tt := range tests {
		t.Run(tt.x+"*"+tt.y, func(t *testing.T) {
			x := mustParse(t, tt.x)
			y := mustParse(t, tt.y)
			if got := Mul(x, y); got.String() != tt.want {
				t.Errorf("Mul(%v, %v) = %v, want %v", x, y, got, tt.want)
			}
		})
	}
}

func TestInverse(t *testing.T) {
	tests := []struct{ word, want string }{
		{"e", "e"},
		{"1", "1"},
		{"1·2", "2·1"},
		{"3·2·1", "1·2·3"},
	}
	for _, tt := range tests {
		w := mustParse(t, tt.word)
		if got := w.Inverse(); got.String() != tt.want {
			t.Errorf("Inverse(%v) = %v, want %v", w, got, tt.want)
		}
	}
}

func TestDistance(t *testing.T) {
	tests := []struct {
		x, y string
		want int
	}{
		{"e", "e", 0},
		{"e", "1·2·3", 3},
		{"1", "2", 2},
		{"1·2", "1·3", 2},
		{"1·2·3", "1·2", 1},
		{"1·2·3", "1·2·3", 0},
		{"2·1", "2·3·1", 3},
	}
	for _, tt := range tests {
		x := mustParse(t, tt.x)
		y := mustParse(t, tt.y)
		if got := Distance(x, y); got != tt.want {
			t.Errorf("Distance(%v, %v) = %d, want %d", x, y, got, tt.want)
		}
		// d(x, y) must agree with |x̄y| computed via Mul.
		if got := Mul(x.Inverse(), y).Norm(); got != tt.want {
			t.Errorf("|x̄y| for (%v, %v) = %d, want %d", x, y, got, tt.want)
		}
	}
}

func TestReduce(t *testing.T) {
	tests := []struct {
		in   []Color
		want string
	}{
		{nil, "e"},
		{[]Color{1, 1}, "e"},
		{[]Color{1, 2, 2, 1}, "e"},
		{[]Color{1, 2, 2, 3}, "1·3"},
		{[]Color{3, 3, 3}, "3"},
		{[]Color{1, 2, 3}, "1·2·3"},
	}
	for _, tt := range tests {
		if got := Reduce(tt.in); got.String() != tt.want {
			t.Errorf("Reduce(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, s := range []string{"e", "1", "3·2·1", "1·2·1·2·1"} {
		w := mustParse(t, s)
		if got := w.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"1·1", "0", "x", "1·0·2", "256"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseDotSeparator(t *testing.T) {
	w, err := Parse("3.2.1")
	if err != nil {
		t.Fatalf("Parse(\"3.2.1\"): %v", err)
	}
	if w.String() != "3·2·1" {
		t.Errorf("Parse(\"3.2.1\") = %v", w)
	}
}

func TestKeyRoundTrip(t *testing.T) {
	for _, s := range []string{"e", "1", "3·2·1", "1·2·1·2·1"} {
		w := mustParse(t, s)
		if got := FromKey(w.Key()); !got.Equal(w) {
			t.Errorf("FromKey(Key(%v)) = %v", w, got)
		}
	}
}

func TestBall(t *testing.T) {
	tests := []struct {
		k, radius int
		wantLen   int
	}{
		{3, 0, 1},
		{3, 1, 4},
		{3, 2, 10}, // 1 + 3 + 3·2
		{4, 2, 17}, // 1 + 4 + 4·3
		{2, 3, 7},  // path: 1 + 2 + 2 + 2
		{3, 3, 22}, // 1 + 3 + 6 + 12
		{1, 5, 2},  // single edge
		{3, -1, 0},
	}
	for _, tt := range tests {
		got := Ball(tt.k, tt.radius)
		if len(got) != tt.wantLen {
			t.Errorf("len(Ball(%d, %d)) = %d, want %d", tt.k, tt.radius, len(got), tt.wantLen)
		}
		if tt.radius >= 0 && BallSize(tt.k, tt.radius) != tt.wantLen {
			t.Errorf("BallSize(%d, %d) = %d, want %d", tt.k, tt.radius, BallSize(tt.k, tt.radius), tt.wantLen)
		}
		for i, w := range got {
			if !w.IsReduced(tt.k) {
				t.Errorf("Ball(%d, %d)[%d] = %v not reduced", tt.k, tt.radius, i, w)
			}
			if w.Norm() > tt.radius {
				t.Errorf("Ball(%d, %d)[%d] = %v exceeds radius", tt.k, tt.radius, i, w)
			}
			if i > 0 && !Less(got[i-1], w) {
				t.Errorf("Ball(%d, %d) not in shortlex order at %d: %v !< %v", tt.k, tt.radius, i, got[i-1], w)
			}
		}
	}
}

func TestSphere(t *testing.T) {
	got := Sphere(3, 2)
	if len(got) != 6 {
		t.Fatalf("len(Sphere(3, 2)) = %d, want 6", len(got))
	}
	for _, w := range got {
		if w.Norm() != 2 {
			t.Errorf("Sphere(3, 2) contains %v with norm %d", w, w.Norm())
		}
	}
}

func TestLess(t *testing.T) {
	tests := []struct {
		x, y string
		want bool
	}{
		{"e", "1", true},
		{"1", "e", false},
		{"1", "1", false},
		{"1", "2", true},
		{"2·1", "1·2·3", true},
		{"1·2", "1·3", true},
	}
	for _, tt := range tests {
		x := mustParse(t, tt.x)
		y := mustParse(t, tt.y)
		if got := Less(x, y); got != tt.want {
			t.Errorf("Less(%v, %v) = %v, want %v", x, y, got, tt.want)
		}
	}
}

// randomWord generates a random reduced word over k colours with norm ≤ max.
func randomWord(rng *rand.Rand, k, maxNorm int) Word {
	n := rng.Intn(maxNorm + 1)
	w := Identity()
	for i := 0; i < n; i++ {
		c := Color(rng.Intn(k) + 1)
		if c == w.Tail() {
			continue
		}
		w = w.Append(c)
	}
	return w
}

const quickK = 5

// quickWords is a testing/quick value generator producing random reduced
// words over quickK colours with norm at most maxNorm.
func quickWords(maxNorm int) func([]reflect.Value, *rand.Rand) {
	return func(values []reflect.Value, rng *rand.Rand) {
		for i := range values {
			values[i] = reflect.ValueOf(randomWord(rng, quickK, maxNorm))
		}
	}
}

func TestQuickInvolution(t *testing.T) {
	// x·x̄ = e and x̄̄ = x.
	f := func(x Word) bool {
		return Mul(x, x.Inverse()).IsIdentity() &&
			Mul(x.Inverse(), x).IsIdentity() &&
			x.Inverse().Inverse().Equal(x)
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickAssociativity(t *testing.T) {
	f := func(x, y, z Word) bool {
		return Mul(Mul(x, y), z).Equal(Mul(x, Mul(y, z)))
	}
	cfg := &quick.Config{Values: quickWords(10)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNormParity(t *testing.T) {
	// |xy| ≡ |x| + |y| (mod 2)  (§2.1).
	f := func(x, y Word) bool {
		return (Mul(x, y).Norm()-x.Norm()-y.Norm())%2 == 0
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickNormAdditivity(t *testing.T) {
	// |xy| = |x| + |y| iff x = e, y = e, or tail(x) ≠ head(y)  (§2.1).
	f := func(x, y Word) bool {
		additive := Mul(x, y).Norm() == x.Norm()+y.Norm()
		cond := x.IsIdentity() || y.IsIdentity() || x.Tail() != y.Head()
		return additive == cond
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMetric(t *testing.T) {
	// d is a metric on G_k: identity, symmetry, triangle inequality.
	f := func(x, y, z Word) bool {
		dxy := Distance(x, y)
		if (dxy == 0) != x.Equal(y) {
			return false
		}
		if dxy != Distance(y, x) {
			return false
		}
		return Distance(x, z) <= dxy+Distance(y, z)
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickMulPreservesReduced(t *testing.T) {
	f := func(x, y Word) bool {
		return Mul(x, y).IsReduced(quickK)
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTranslate(t *testing.T) {
	// Translate(u, u·w) = w and |Translate(u, w)| = d(u, w).
	f := func(u, w Word) bool {
		if !Translate(u, Mul(u, w)).Equal(w) {
			return false
		}
		return Translate(u, w).Norm() == Distance(u, w)
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickTailHeadRelation(t *testing.T) {
	// head(x) = tail(x̄) and pred(x) = x·tail(x) for x ≠ e.
	f := func(x Word) bool {
		if x.IsIdentity() {
			return true
		}
		if x.Head() != x.Inverse().Tail() {
			return false
		}
		return x.Pred().Equal(Mul(x, Word{x.Tail()}))
	}
	cfg := &quick.Config{Values: quickWords(12)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickKeyInjective(t *testing.T) {
	f := func(x, y Word) bool {
		return (x.Key() == y.Key()) == x.Equal(y)
	}
	cfg := &quick.Config{Values: quickWords(8)}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkMul(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	words := make([]Word, 256)
	for i := range words {
		words[i] = randomWord(rng, 8, 32)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mul(words[i%256], words[(i+7)%256])
	}
}

func BenchmarkBall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Ball(4, 5)
	}
}
