// Top-level benchmarks: one per experiment of EXPERIMENTS.md, so every
// figure/lemma/theorem reproduction has a `go test -bench` entry point, plus
// end-to-end benchmarks of the two headline pipelines (the greedy machine
// and the Theorem 5 adversary).
package repro

import (
	"context"
	"io"
	"math/rand"
	goruntime "runtime"
	"strconv"
	"testing"

	"repro/internal/algo"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/group"
	"repro/internal/harness"
	"repro/internal/runtime"
	"repro/internal/sweep"
)

// benchExperiment runs one registered experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := harness.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.Run(io.Discard); err != nil {
			b.Fatalf("%s: %v", id, err)
		}
	}
}

func BenchmarkE1GreedyRounds(b *testing.B)  { benchExperiment(b, "E1") }
func BenchmarkE2WorstCase(b *testing.B)     { benchExperiment(b, "E2") }
func BenchmarkE3ColourSystems(b *testing.B) { benchExperiment(b, "E3") }
func BenchmarkE4Encoding(b *testing.B)      { benchExperiment(b, "E4") }
func BenchmarkE5Template(b *testing.B)      { benchExperiment(b, "E5") }
func BenchmarkE6Extension(b *testing.B)     { benchExperiment(b, "E6") }
func BenchmarkE7BaseCase(b *testing.B)      { benchExperiment(b, "E7") }
func BenchmarkE8Inductive(b *testing.B)     { benchExperiment(b, "E8") }
func BenchmarkE9Adversary(b *testing.B)     { benchExperiment(b, "E9") }
func BenchmarkE10Regular(b *testing.B)      { benchExperiment(b, "E10") }
func BenchmarkE12Lemmas(b *testing.B)       { benchExperiment(b, "E12") }
func BenchmarkE13Views(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14Related(b *testing.B)      { benchExperiment(b, "E14") }
func BenchmarkE15Scenarios(b *testing.B)    { benchExperiment(b, "E15") }

// E11 sweeps palettes up to 2048 and is by far the heaviest experiment;
// gate it so default -bench=. runs stay snappy while -bench=E11 still works.
func BenchmarkE11UpperBounds(b *testing.B) {
	if testing.Short() {
		b.Skip("E11 sweeps k up to 2048; skipped with -short")
	}
	benchExperiment(b, "E11")
}

// BenchmarkAdversaryByK isolates the Theorem 5 pipeline per palette size.
func BenchmarkAdversaryByK(b *testing.B) {
	for _, k := range []int{3, 4, 5, 6} {
		b.Run(benchName(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				adv, err := core.New(algo.NewGreedy(), k)
				if err != nil {
					b.Fatal(err)
				}
				res, err := adv.Run()
				if err != nil {
					b.Fatal(err)
				}
				if res.OutV.IsMatched() {
					b.Fatal("wrong adversary outcome")
				}
			}
		})
	}
}

// BenchmarkGreedyMachineEngines compares the three engines on the same
// instances: the single-threaded slab engine, the goroutine-per-node
// α-synchroniser (map protocol), and the flat worker-pool engine whose
// round loop is allocation-free (BENCH_pr1.json records a baseline).
//
// The instance is a union of partial random matchings rather than a
// k-regular graph: in a k-regular properly coloured graph every node has a
// colour-1 edge and greedy halts at time 0, so nothing but setup would be
// measured. All engines share one arena-backed machine pool, so the numbers
// isolate engine round-loop cost from per-machine allocation.
func BenchmarkGreedyMachineEngines(b *testing.B) {
	for _, n := range []int{4096, 65536} {
		rng := rand.New(rand.NewSource(1))
		g := graph.RandomMatchingUnion(n, 6, 0.7, rng)
		g.Flatten() // build the CSR once so no engine pays for it in-loop
		factory := dist.NewGreedyMachinePool(n)
		prefix := "n=" + strconv.Itoa(n) + "/"
		b.Run(prefix+"sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunSequential(g, factory, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"concurrent", func(b *testing.B) {
			if n > 1<<13 && testing.Short() {
				b.Skip("goroutine-per-node at this n is heavy; skipped with -short")
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunConcurrent(g, factory, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"workers", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunWorkers(g, factory, 64); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReducedPipelineEngines measures the full ReducedGreedyMachine
// pipeline (Linial reduction + recolouring + greedy) on the sequential
// reference vs the arena-batched workers engine. Both share one pooled
// machine arena; with the per-worker RoundArena the workers round loop
// performs no allocations even though every reduction round sends a colour
// list per node (BENCH_pr2.json records a baseline).
func BenchmarkReducedPipelineEngines(b *testing.B) {
	const delta = 3
	for _, p := range []struct{ n, k int }{{4096, 256}, {65536, 1024}} {
		if p.n > 1<<13 && testing.Short() {
			continue
		}
		rng := rand.New(rand.NewSource(2))
		g := graph.RandomBoundedDegree(p.n, p.k, delta, 5*p.n, rng)
		g.Flatten()
		maxR := dist.TotalRounds(p.k, delta) + 8
		pool := dist.NewReducedGreedyMachinePool(delta, p.n)
		prefix := "n=" + strconv.Itoa(p.n) + ",k=" + strconv.Itoa(p.k) + "/"
		b.Run(prefix+"sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunSequential(g, pool, maxR); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"workers", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunWorkers(g, pool, maxR); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWorkersScaling is the multi-core scaling study for RunWorkersN:
// the same instance driven with 1…16 workers (independent of GOMAXPROCS, so
// the shard/barrier overhead is visible even on small hosts). BENCH_pr2.json
// records a run with the host core count alongside.
func BenchmarkWorkersScaling(b *testing.B) {
	for _, n := range []int{1 << 18, 1 << 20} {
		if n > 1<<18 && testing.Short() {
			continue
		}
		rng := rand.New(rand.NewSource(1))
		g := graph.RandomMatchingUnion(n, 6, 0.7, rng)
		g.Flatten()
		factory := dist.NewGreedyMachinePool(n)
		for _, workers := range []int{1, 2, 4, 8, 16} {
			b.Run("n="+strconv.Itoa(n)+"/workers="+strconv.Itoa(workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := runtime.RunWorkersN(g, nil, factory, 64, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkEngineTailRounds isolates the per-round liveness-scan cost the
// bitset frontiers attack: a §1.2 worst-case path of k edges embedded in a
// sea of isolated nodes, so greedy runs ~k rounds with a handful of live
// nodes each. An engine that walks all n nodes (or halted flags) per round
// pays O(nk) for the tail; a 64-bit word frontier pays O(nk/64 + live).
func BenchmarkEngineTailRounds(b *testing.B) {
	const k = 512
	for _, n := range []int{1 << 18, 1 << 20} {
		if n > 1<<18 && testing.Short() {
			continue
		}
		bld := graph.NewCSRBuilder(n, k)
		for i := 0; i < k; i++ {
			if err := bld.AddEdge(i, i+1, group.Color(k-i)); err != nil {
				b.Fatal(err)
			}
		}
		g, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		g.Flatten()
		pool := dist.NewGreedyMachinePool(n)
		prefix := "n=" + strconv.Itoa(n) + "/"
		b.Run(prefix+"sequential", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunSequential(g, pool, k+16); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(prefix+"workers=2", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := runtime.RunWorkersN(g, nil, pool, k+16, 2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE11SweepParallel measures the parallel palette sweep behind E11
// at several GOMAXPROCS settings; the speedup at procs=N over procs=1 is
// the sweep's multi-core yield (palette sizes are embarrassingly parallel).
func BenchmarkE11SweepParallel(b *testing.B) {
	if testing.Short() {
		b.Skip("the sweep reaches k=2048; skipped with -short")
	}
	ks := []int{4, 8, 16, 64, 256, 1024, 2048}
	for _, procs := range []int{1, 2, 4, 8} {
		b.Run("procs="+strconv.Itoa(procs), func(b *testing.B) {
			prev := goruntime.GOMAXPROCS(procs)
			defer goruntime.GOMAXPROCS(prev)
			for i := 0; i < b.N; i++ {
				if _, err := harness.E11PaletteSweep(ks, 3); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGenMatchingUnion compares instance construction on the CSR
// builder (the path every constructor and scenario now uses) against the
// retained legacy per-node-map path at benchmark scale. The acceptance bar
// for the generator subsystem is ≥5× fewer allocations on the builder; in
// practice the gap is orders of magnitude, since the map path allocates
// per node and the builder amortises everything into a handful of slabs.
func BenchmarkGenMatchingUnion(b *testing.B) {
	const n, k = 65536, 6
	b.Run("csr-builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(1))
			graph.RandomMatchingUnion(n, k, 0.7, rng)
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(1))
			graph.LegacyRandomMatchingUnion(n, k, 0.7, rng)
		}
	})
}

// BenchmarkGenBoundedDegree is the same comparison for the §1.3 k ≫ Δ
// instances (the reduced-pipeline benchmark setup).
func BenchmarkGenBoundedDegree(b *testing.B) {
	const n, k, delta = 65536, 1024, 3
	b.Run("csr-builder", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(2))
			graph.RandomBoundedDegree(n, k, delta, 5*n, rng)
		}
	})
	b.Run("legacy-map", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng := rand.New(rand.NewSource(2))
			graph.LegacyRandomBoundedDegree(n, k, delta, 5*n, rng)
		}
	})
}

// BenchmarkGenSharded measures the sharded parallel constructors across
// worker counts against their own 1-worker baseline (the output is
// byte-identical across the row, so this is pure construction wall-clock:
// per-colour-class generation fans out, the merge is sequential, and the
// CSR fill/sort/mate passes shard over node ranges). On a single-core host
// the row shows the coordination overhead instead of speedup.
func BenchmarkGenSharded(b *testing.B) {
	const n = 65536
	seedsFor := func(name string, k int) []int64 { return gen.ClassSeeds(name, 1, k) }
	b.Run("matching-union", func(b *testing.B) {
		const k = 6
		seeds := seedsFor("matching-union", k)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graph.ShardedMatchingUnion(n, k, 0.7, seeds, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
	b.Run("regular", func(b *testing.B) {
		const k = 8
		seeds := seedsFor("regular", k)
		for _, workers := range []int{1, 2, 4, 8} {
			b.Run("workers="+strconv.Itoa(workers), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := graph.ShardedRegular(n, k, seeds, workers); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	})
}

// BenchmarkSweepStream compares the buffered Run against the streaming
// pipeline on a grid big enough for the reorder window to matter. The
// interesting number is allocs/op: the stream holds a bounded window and
// recycles per-round histogram buffers, so its footprint is flat in the
// cell count while Run's grows linearly.
func BenchmarkSweepStream(b *testing.B) {
	cfg := sweep.Config{
		Grids:       []string{"matching-union:n=256..1024,k=2|4"},
		Algos:       []string{"greedy", "proposal"},
		Reps:        4,
		Seed:        1,
		CheckBounds: true,
	}
	b.Run("buffered-run", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Run(cfg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream-discard", func(b *testing.B) {
		b.ReportAllocs()
		sink := sweep.NewJSONLSink(io.Discard)
		for i := 0; i < b.N; i++ {
			if _, err := sweep.Stream(context.Background(), cfg, sink); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkGenScenarios builds every registered scenario at a mid-size n,
// so the bench smoke run exercises the whole registry and allocation
// regressions in any family are visible.
func BenchmarkGenScenarios(b *testing.B) {
	for _, s := range gen.All() {
		overrides := gen.Params{}
		if _, ok := s.Params["n"]; ok {
			overrides["n"] = 4096
		}
		b.Run(s.Name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.Build(int64(i), overrides); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReductionSchedule measures the shared schedule computation that
// every node of the reduced-greedy machine performs at Init.
func BenchmarkReductionSchedule(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dist.ReductionSchedule(1<<20, 6)
	}
}

func benchName(k int) string {
	return "k=" + strconv.Itoa(k)
}
